// wmsynth prints the MAB circuit model — area, critical-path delay, active
// and sleep power — for an arbitrary configuration grid.
//
// Usage:
//
//	wmsynth [-nt 1,2] [-ns 4,8,16,32]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"waymemo/internal/report"
	"waymemo/internal/synth"
)

func parseList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad entry count %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	ntFlag := flag.String("nt", "1,2", "tag entry counts")
	nsFlag := flag.String("ns", "4,8,16,32", "set-index entry counts")
	flag.Parse()
	nts, err := parseList(*ntFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmsynth:", err)
		os.Exit(2)
	}
	nss, err := parseList(*nsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmsynth:", err)
		os.Exit(2)
	}
	t := report.Table{
		Title:   "MAB circuit model (0.13um, 1.3V, 360MHz; cycle 2.5ns)",
		Columns: []string{"config", "bits", "area mm^2", "delay ns", "active mW", "sleep mW", "fits cycle"},
	}
	for _, nt := range nts {
		for _, ns := range nss {
			r := synth.Characterize(nt, ns)
			t.AddRow(fmt.Sprintf("%dx%d", nt, ns),
				fmt.Sprintf("%d", synth.StateBits(nt, ns)),
				report.F(r.AreaMM2, 3), report.F(r.DelayNS, 2),
				report.F(r.ActiveMW, 2), report.F(r.SleepMW, 2),
				fmt.Sprintf("%v", synth.FitsCycle(r)))
		}
	}
	t.Render(os.Stdout)
}
