// frvasm assembles FRVL source into a memory image.
//
// Usage:
//
//	frvasm [-o out.bin] [-l] prog.s
//
// With -l a disassembly listing is printed instead of writing the image.
// The output format is a simple segment dump: for each segment, an 8-byte
// header (address, length, little-endian) followed by the raw bytes.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"waymemo/internal/asm"
	"waymemo/internal/isa"
)

func main() {
	out := flag.String("o", "a.img", "output image file")
	list := flag.Bool("l", false, "print a listing instead of writing the image")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: frvasm [-o out.img] [-l] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "frvasm:", err)
		os.Exit(1)
	}
	p, err := asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "frvasm:", err)
		os.Exit(1)
	}
	if *list {
		fmt.Printf("entry: 0x%08x\n", p.Entry)
		for _, seg := range p.Segments {
			fmt.Printf("segment 0x%08x (%d bytes)\n", seg.Addr, len(seg.Data))
			inText := func(a uint32) bool {
				for _, r := range p.TextRanges {
					if a >= r[0] && a < r[1] {
						return true
					}
				}
				return false
			}
			for off := 0; off+4 <= len(seg.Data); off += 4 {
				addr := seg.Addr + uint32(off)
				w := binary.LittleEndian.Uint32(seg.Data[off:])
				if inText(addr) {
					fmt.Printf("  %08x: %08x  %s\n", addr, w, isa.Disassemble(isa.Decode(w), addr))
				} else {
					fmt.Printf("  %08x: %08x  .word\n", addr, w)
				}
			}
		}
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "frvasm:", err)
		os.Exit(1)
	}
	defer f.Close()
	var hdr [8]byte
	for _, seg := range p.Segments {
		binary.LittleEndian.PutUint32(hdr[0:], seg.Addr)
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(seg.Data)))
		if _, err := f.Write(hdr[:]); err != nil {
			fmt.Fprintln(os.Stderr, "frvasm:", err)
			os.Exit(1)
		}
		if _, err := f.Write(seg.Data); err != nil {
			fmt.Fprintln(os.Stderr, "frvasm:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote %s: %d segment(s), %d bytes, entry 0x%08x\n",
		*out, len(p.Segments), p.Size(), p.Entry)
}
