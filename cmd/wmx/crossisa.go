package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"waymemo/internal/experiments"
	"waymemo/internal/suite"
)

// runCrossISA implements `wmx crossisa`: the instruction-cache technique
// zoo on one kernel under both frontends, FRVL vs RV32I, side by side.
func runCrossISA(args []string) {
	fs := flag.NewFlagSet("wmx crossisa", flag.ExitOnError)
	kernel := fs.String("kernel", "DCT",
		"shared kernel to compare (a benchmark name or a single synthetic spec; resolved as KERNEL and rv32:KERNEL)")
	par := fs.Int("j", 0, "workloads to simulate concurrently (0 = GOMAXPROCS)")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	md := fs.Bool("md", false, "emit a markdown pipe table")
	traceDir := fs.String("trace-dir", "",
		"spill captured event traces to this directory; reruns replay instead of simulating")
	fs.Parse(args)
	validateJ(fs, *par, "wmx crossisa")

	opts := []suite.Option{suite.WithParallelism(*par)}
	if *traceDir != "" {
		tc, err := suite.NewDirTraceCache(*traceDir)
		exitOn(err)
		opts = append(opts, suite.WithTraceCache(tc))
	}
	t, err := experiments.CrossISA(context.Background(), *kernel, opts...)
	exitOn(err)
	switch {
	case *csv:
		t.RenderCSV(os.Stdout)
	case *md:
		t.RenderMarkdown(os.Stdout)
	default:
		t.Render(os.Stdout)
	}
	fmt.Println()
}
