package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"waymemo/internal/explore"
	"waymemo/internal/suite"
	"waymemo/internal/synth"
	"waymemo/internal/workloads"
)

// runExplore is the `wmx explore` mode: build a Space from the axis flags,
// sweep it (memoized when -cache-dir is set) and print the analysis.
func runExplore(args []string) {
	fs := flag.NewFlagSet("wmx explore", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: wmx explore [flags]")
		fmt.Fprintln(fs.Output(), "sweep a cache design space and report per-config power, axis marginals,")
		fmt.Fprintln(fs.Output(), "the power/hit-rate Pareto frontier and the power-optimal MAB size")
		fs.PrintDefaults()
		fmt.Fprintln(fs.Output(), "\n-workloads accepts benchmark names and synthetic specs; a ranged knob")
		fmt.Fprintln(fs.Output(), "(fp=4KiB..64KiB doubles through the range) sweeps the workload axis:")
		fmt.Fprintln(fs.Output(), "  "+synth.SpecSyntax())
		fmt.Fprintln(fs.Output(), "  wmx explore -workloads 'synth:pchase,fp=4KiB..64KiB,seed=7'")
	}
	domain := fs.String("domain", "data", "cache to sweep: data or fetch")
	mabTags := fs.String("mab-tags", "1,2", "MAB tag-entry axis (comma-separated)")
	mabSets := fs.String("mab-sets", "4,8,16,32", "MAB set-entry axis (comma-separated)")
	sets := fs.String("sets", "512", "cache set-count axis (comma-separated, powers of two)")
	ways := fs.String("ways", "2", "cache way-count axis (comma-separated)")
	line := fs.String("line", "32", "cache line-size axis in bytes (comma-separated, powers of two)")
	wl := fs.String("workloads", "", "comma-separated benchmark names and/or synthetic specs (default: all seven benchmarks)")
	packet := fs.Uint("packet", 0, "fetch-packet bytes (0 = the 8-byte VLIW packet)")
	cacheDir := fs.String("cache-dir", "", "memoize grid points in this directory (reruns skip simulated points)")
	traceDir := fs.String("trace-dir", "", "spill captured event traces to this directory (WMTRACE1); reruns replay instead of simulating")
	noShare := fs.Bool("no-trace-share", false, "execute every grid point live instead of replaying shared traces")
	replayBatch := fs.Bool("replay-batch", true, "replay captures in batched fan-out passes sharded across workers (=false: one per-event pass per technique sink)")
	par := fs.Int("j", 0, "grid points to simulate concurrently (0 = GOMAXPROCS)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	md := fs.Bool("md", false, "emit a markdown report")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "wmx explore: unexpected arguments %q\n", fs.Args())
		os.Exit(2)
	}
	validateJ(fs, *par, "wmx explore")

	space := explore.Space{PacketBytes: uint32(*packet)}
	switch strings.ToLower(*domain) {
	case "data", "d":
		space.Domain = suite.Data
	case "fetch", "i", "instruction":
		space.Domain = suite.Fetch
	default:
		fmt.Fprintf(os.Stderr, "wmx explore: unknown domain %q (valid: data, fetch)\n", *domain)
		os.Exit(2)
	}
	for _, axis := range []struct {
		name string
		spec string
		dst  *[]int
	}{
		{"mab-tags", *mabTags, &space.TagEntries},
		{"mab-sets", *mabSets, &space.SetEntries},
		{"sets", *sets, &space.Sets},
		{"ways", *ways, &space.Ways},
		{"line", *line, &space.LineBytes},
	} {
		vals, err := parseInts(axis.spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wmx explore: -%s: %v\n", axis.name, err)
			os.Exit(2)
		}
		*axis.dst = vals
	}
	if *wl == "" {
		space.Workloads = workloads.All()
	} else {
		// ParseList keeps a synthetic spec's own commas attached to it and
		// expands ranged knobs into one workload per swept value.
		ws, err := workloads.ParseList(*wl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wmx explore:", err)
			os.Exit(2)
		}
		space.Workloads = ws
	}

	// Profiling starts only after argument validation, so usage errors
	// cannot leave a truncated profile behind.
	stopProfiles := startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	opts := []explore.Option{
		explore.WithParallelism(*par),
		explore.WithProgress(func(p explore.Progress) {
			if !p.Done {
				return
			}
			how := "simulated"
			if p.Cached {
				how = "cached"
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s %dKB/%dw %s\n",
				p.Index+1, p.Total, p.Workload, p.Geometry.SizeBytes()/1024,
				p.Geometry.Ways, how)
		}),
	}
	if *cacheDir != "" {
		opts = append(opts, explore.WithCacheDir(*cacheDir))
	}
	if *noShare {
		opts = append(opts, explore.WithTraceSharing(false))
	}
	if !*replayBatch {
		opts = append(opts, explore.WithBatchReplay(false))
	}
	if *traceDir != "" {
		opts = append(opts, explore.WithTraceDir(*traceDir))
	}

	mode := "batched fan-out replay"
	switch {
	case *noShare:
		mode = "live execution"
	case !*replayBatch:
		mode = "per-sink replay"
	}
	fmt.Fprintf(os.Stderr, "exploring %d grid points (%s-cache, %s)...\n",
		space.NumPoints(), space.Domain, mode)
	grid, err := explore.Run(context.Background(), space, opts...)
	exitOn(err)
	if *noShare {
		fmt.Fprintf(os.Stderr, "%d cached, %d simulated\n\n", grid.Hits, grid.Misses)
	} else {
		fmt.Fprintf(os.Stderr, "%d cached, %d simulated (%d executed, %d replayed, %d trace loads)\n",
			grid.Hits, grid.Misses, grid.Traces.Captures, grid.Traces.Replays, grid.Traces.DiskLoads)
		// Fan-out shape, so a batching regression is visible straight from
		// the CLI: more passes or fewer sinks per pass for the same grid
		// means captures are being re-streamed more than they should be.
		// (Delivery *rate* is benchrec's job — it times the passes alone,
		// where a whole-sweep clock would mostly measure simulation.)
		if tr := grid.Traces; tr.FanOutPasses > 0 {
			fmt.Fprintf(os.Stderr, "fan-out: %d passes, %.1f sinks/pass avg, %.1fM deliveries\n",
				tr.FanOutPasses, tr.SinksPerPass(),
				float64(tr.FanOutDeliveries)/1e6)
		}
		fmt.Fprintln(os.Stderr)
	}

	if *md {
		grid.WriteMarkdown(os.Stdout)
		return
	}
	grid.WriteReport(os.Stdout, *csv)
}

// parseInts parses a comma-separated axis specification like "4,8,16".
func parseInts(spec string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad value %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}
