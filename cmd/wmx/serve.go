package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"waymemo/internal/fault"
	"waymemo/internal/serve"
)

// defaultListen is the serve mode's default bind address: loopback only —
// the daemon trusts its clients, so exposing it wider is an explicit
// -listen choice.
const defaultListen = "127.0.0.1:8077"

// runServe is the `wmx serve` mode: boot the sweep daemon and serve until
// interrupted.
func runServe(args []string) {
	fs := flag.NewFlagSet("wmx serve", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: wmx serve [flags]")
		fmt.Fprintln(fs.Output(), "run the sweep-as-a-service daemon: POST explore sweeps to /v1/sweeps,")
		fmt.Fprintln(fs.Output(), "follow progress over SSE, query warm analytics; identical in-flight grid")
		fmt.Fprintln(fs.Output(), "points are deduplicated and one budgeted store serves every client")
		fs.PrintDefaults()
	}
	listen := fs.String("listen", defaultListen, "address to serve the HTTP API on")
	storeDir := fs.String("store-dir", ".wmx-store", "shared result + trace store directory")
	budget := fs.String("store-budget", "", "store byte budget with LRU eviction, e.g. 512MiB or 2GiB (empty = unlimited)")
	par := fs.Int("j", 0, "grid points to simulate concurrently, across all sweeps (0 = GOMAXPROCS)")
	maxJobs := fs.Int("max-jobs", 0, "finished sweeps kept queryable (0 = 4096)")
	maxBacklog := fs.Int("max-backlog", 0, "unfinished grid points admitted before shedding sweeps with 429 (0 = 4096, -1 = unlimited)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request deadline for non-streaming endpoints (0 = 60s)")
	pointDeadline := fs.Duration("point-deadline", 0, "watchdog per grid-point simulation: a point stuck past this fails retryable (0 = 5m, -1ns = off)")
	faultSpec := fs.String("fault-spec", "", "fault-injection spec, e.g. 'seed=7;io:err:0.05;http:drop:0.01' (empty = off)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "wmx serve: unexpected arguments %q\n", fs.Args())
		os.Exit(2)
	}
	validateJ(fs, *par, "wmx serve")

	budgetBytes, err := parseByteSize(*budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmx serve: -store-budget:", err)
		os.Exit(2)
	}
	inj, err := fault.NewFromString(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmx serve: -fault-spec:", err)
		os.Exit(2)
	}

	srv, err := serve.New(serve.Config{
		StoreDir:       *storeDir,
		StoreBudget:    budgetBytes,
		Parallelism:    *par,
		MaxJobs:        *maxJobs,
		MaxBacklog:     *maxBacklog,
		RequestTimeout: *reqTimeout,
		PointDeadline:  *pointDeadline,
		Faults:         inj,
	})
	exitOn(err)

	ln, err := net.Listen("tcp", *listen)
	exitOn(err)
	// ReadHeaderTimeout bounds a client that connects and stalls before
	// sending headers — without it, a handful of dead connections pins
	// goroutines forever.
	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}

	// Graceful shutdown, drain-first: flip /readyz to 503 and shed new
	// sweeps so orchestrators stop routing here, drain HTTP briefly, then
	// cancel whatever sweeps are still running. A second signal aborts the
	// drain.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-sigs
		fmt.Fprintln(os.Stderr, "wmx serve: draining...")
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		go func() {
			<-sigs
			cancel()
		}()
		hs.Shutdown(ctx)
		srv.Close()
	}()

	budgetNote := "unlimited"
	if budgetBytes > 0 {
		budgetNote = *budget
	}
	faultNote := ""
	if inj != nil {
		faultNote = fmt.Sprintf(", FAULT INJECTION %q", *faultSpec)
	}
	fmt.Fprintf(os.Stderr, "wmx serve: listening on http://%s (store %s, budget %s%s)\n",
		ln.Addr(), *storeDir, budgetNote, faultNote)
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		exitOn(err)
	}
	<-done

	st := srv.Stats()
	fmt.Fprintf(os.Stderr,
		"wmx serve: served %d sweeps (%d deduped), %d points (%d simulated, %d store hits, %d dedup joins), %d shed; "+
			"store: %d results (%d B), %d trace files (%d B), %d+%d evictions, "+
			"%d+%d+%d recovered at boot\n",
		st.Sweeps, st.DedupSweeps, st.Points, st.Simulations, st.StoreHits, st.DedupJoins, st.ShedSweeps,
		st.Store.ResultEntries, st.Store.ResultBytes, st.Store.TraceFiles, st.Store.TraceBytes,
		st.Store.ResultEvictions, st.Store.TraceEvictions,
		st.Store.RecoveredResults, st.Store.RecoveredTraces, st.Store.RecoveredTemps)
	fmt.Fprintf(os.Stderr,
		"wmx serve: journal: %d records (%d append errors), resumed %d sweeps (%d points skipped), %d panics recovered\n",
		st.JournalRecords, st.JournalAppendErrors, st.ResumedSweeps, st.ResumedPointsSkipped, st.PanicsRecovered)
	if inj != nil {
		fmt.Fprintf(os.Stderr, "wmx serve: faults: %s\n", inj.Describe())
	}
}

// validateJ rejects worker counts that cannot mean anything: a negative -j,
// or an explicit -j 0 (the 0 default stands for GOMAXPROCS, but writing
// `-j 0` out is almost always a scripting bug, so it fails loudly instead
// of silently maxing out the machine).
func validateJ(fs *flag.FlagSet, par int, mode string) {
	if par < 0 {
		fmt.Fprintf(os.Stderr, "%s: -j %d: worker count must be positive\n", mode, par)
		os.Exit(2)
	}
	if par == 0 {
		explicit := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "j" {
				explicit = true
			}
		})
		if explicit {
			fmt.Fprintf(os.Stderr, "%s: -j 0: worker count must be positive (omit -j for GOMAXPROCS)\n", mode)
			os.Exit(2)
		}
	}
}

// parseByteSize parses a human byte size ("512MiB", "2GiB", "64k", plain
// bytes). Empty means 0 (unlimited).
func parseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	for _, sf := range []struct {
		suffix string
		mult   int64
	}{
		{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
		{"k", 1 << 10}, {"K", 1 << 10}, {"m", 1 << 20}, {"M", 1 << 20},
		{"g", 1 << 30}, {"G", 1 << 30}, {"B", 1},
	} {
		if strings.HasSuffix(s, sf.suffix) {
			mult, s = sf.mult, strings.TrimSuffix(s, sf.suffix)
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative size %d", v)
	}
	return v * mult, nil
}
