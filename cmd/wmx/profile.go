package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// flushProfiles finishes any started profiles. It is installed by
// startProfiles and also invoked by exitOn, so error exits still leave a
// parseable CPU profile behind — the flag exists precisely to debug runs
// that may fail.
var flushProfiles = func() {}

// startProfiles starts CPU profiling into cpuPath and arranges a heap
// profile into memPath (either may be empty), returning the (idempotent)
// function to run when the measured work is done. Keeping this in one place
// means both wmx modes expose identical -cpuprofile/-memprofile behavior,
// so any future perf work on the hot path is measurable out of the box:
//
//	wmx explore -cpuprofile cpu.out && go tool pprof cpu.out
func startProfiles(cpuPath, memPath string) (stop func()) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		exitOn(err)
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			exitOn(fmt.Errorf("starting CPU profile: %w", err))
		}
		cpuFile = f
	}
	var once sync.Once
	stop = func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "wmx:", err)
				}
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "wmx:", err)
					return
				}
				runtime.GC() // materialize the final live-heap state
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "wmx:", err)
				}
				if err := f.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "wmx:", err)
				}
			}
		})
	}
	flushProfiles = stop
	return stop
}
