// wmx regenerates the paper's tables and figures.
//
// Usage:
//
//	wmx [-exp all|table1|table2|table3|fig4|fig5|fig6|fig7|fig8] [-csv]
//
// Running with -exp all (the default) executes the seven-benchmark suite
// once and prints every table and figure of the evaluation section.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"waymemo/internal/experiments"
	"waymemo/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1..table3, fig4..fig8")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	emit := func(t report.Table) {
		if *csv {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}

	which := strings.ToLower(*exp)
	needSuite := which == "all" || strings.HasPrefix(which, "fig")
	var results *experiments.Results
	if needSuite {
		fmt.Fprintln(os.Stderr, "running the seven-benchmark suite...")
		var err error
		results, err = experiments.RunAll()
		if err != nil {
			fmt.Fprintln(os.Stderr, "wmx:", err)
			os.Exit(1)
		}
	}

	ran := false
	want := func(name string) bool {
		if which == "all" || which == name {
			ran = true
			return true
		}
		return false
	}
	if want("table1") {
		emit(experiments.Table1())
	}
	if want("table2") {
		emit(experiments.Table2())
	}
	if want("table3") {
		emit(experiments.Table3())
	}
	if want("fig4") {
		emit(experiments.AccessTable(
			"Figure 4: tag and way accesses per D-cache access", experiments.Figure4(results)))
	}
	if want("fig5") {
		emit(experiments.PowerTable(
			"Figure 5: D-cache power (mW)", experiments.Figure5(results)))
	}
	if want("fig6") {
		emit(experiments.AccessTable(
			"Figure 6: tag and way accesses per I-cache access", experiments.Figure6(results)))
	}
	if want("fig7") {
		emit(experiments.PowerTable(
			"Figure 7: I-cache power (mW)", experiments.Figure7(results)))
	}
	if want("fig8") {
		rows := experiments.Figure8(results)
		emit(experiments.Figure8Table(rows))
		avg, max := experiments.AverageSaving(rows)
		fmt.Printf("average total saving: %s   maximum: %s\n\n", report.Pct(avg), report.Pct(max))
	}
	// Studies beyond the paper's figures (not part of -exp all).
	if which == "ablation-d" {
		ran = true
		rows, err := experiments.AblationD()
		exitOn(err)
		emit(experiments.AblationTable("D-cache techniques (7-benchmark average)", rows))
	}
	if which == "ablation-i" {
		ran = true
		rows, err := experiments.AblationI()
		exitOn(err)
		emit(experiments.AblationTable("I-cache techniques (7-benchmark average)", rows))
	}
	if which == "consistency" {
		ran = true
		rows, err := experiments.AblationConsistency()
		exitOn(err)
		emit(experiments.ConsistencyTable(rows))
	}
	if which == "packet" {
		ran = true
		rows, err := experiments.AblationPacket()
		exitOn(err)
		emit(experiments.PacketTable(rows))
	}
	if which == "report" {
		// Regenerate EXPERIMENTS.md on stdout: the full suite plus every
		// ablation study.
		ran = true
		fmt.Fprintln(os.Stderr, "running the seven-benchmark suite and all ablations...")
		results, err := experiments.RunAll()
		exitOn(err)
		ablD, err := experiments.AblationD()
		exitOn(err)
		ablI, err := experiments.AblationI()
		exitOn(err)
		cons, err := experiments.AblationConsistency()
		exitOn(err)
		packet, err := experiments.AblationPacket()
		exitOn(err)
		experiments.WriteMarkdown(os.Stdout, results, ablD, ablI, cons, packet)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "wmx: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmx:", err)
		os.Exit(1)
	}
}
