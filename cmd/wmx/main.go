// wmx regenerates the paper's tables and figures, and sweeps cache design
// spaces.
//
// Usage:
//
//	wmx [-exp NAME] [-csv] [-j N] [-trace-dir DIR] [-replay-batch=false]
//	    [-cpuprofile FILE] [-memprofile FILE]
//	wmx explore [-domain data|fetch] [-mab-tags L] [-mab-sets L]
//	            [-sets L] [-ways L] [-line L] [-workloads NAMES]
//	            [-packet N] [-cache-dir DIR] [-trace-dir DIR]
//	            [-no-trace-share] [-replay-batch=false] [-j N] [-csv] [-md]
//	            [-cpuprofile FILE] [-memprofile FILE]
//	wmx serve   [-listen ADDR] [-store-dir DIR] [-store-budget SIZE] [-j N]
//	            [-max-jobs N]
//	wmx crossisa [-kernel NAME] [-j N] [-csv] [-md] [-trace-dir DIR]
//
// NAME is one of: all, table1, table2, table3, fig4, fig5, fig6, fig7,
// fig8, ablation-d, ablation-i, consistency, packet, report.
//
// Running with -exp all (the default) executes the seven-benchmark suite
// once and prints every table and figure of the evaluation section. The
// ablation studies (ablation-d, ablation-i, consistency, packet) go beyond
// the paper's figures; report emits the full EXPERIMENTS.md on stdout.
// Benchmarks run concurrently (-j workers, default GOMAXPROCS).
//
// The explore mode runs the design-space engine (internal/explore): each
// axis flag takes a comma-separated list (L), the grid is their cross
// product, and the report covers per-configuration power, axis marginals,
// the power/hit-rate Pareto frontier and the power-optimal MAB size. With
// -cache-dir, completed grid points are memoized on disk and repeated
// sweeps skip every already-simulated point:
//
//	wmx explore -cache-dir .explore-cache          # the paper's D-MAB grid
//	wmx explore -domain fetch -mab-sets 8,16,32    # I-cache sweep
//	wmx explore -sets 256,512,1024 -ways 1,2,4     # geometry sweep
//
// The -workloads flag accepts the seven benchmark names and synthetic
// workload specs (see internal/synth and wmsynth -patterns); a ranged knob
// sweeps the workload axis:
//
//	wmx explore -workloads 'synth:pchase,fp=4KiB..64KiB,seed=7'
//
// The crossisa mode runs the I-cache technique zoo on one kernel under both
// frontends — the FRVL rendering and its RV32I port (see internal/isa/rv32)
// — and prints per-technique power and MAB hit rate side by side:
//
//	wmx crossisa -kernel DCT
//	wmx crossisa -kernel 'synth:pchase,fp=4KiB,seed=7'
//
// The explore -workloads list mixes frontends freely; an "rv32:" prefix
// selects the RV32I rendering of a kernel or spec ("DCT,rv32:DCT").
//
// The serve mode (default address 127.0.0.1:8077) runs the sweep daemon
// (internal/serve): clients POST explore sweeps to /v1/sweeps, follow
// per-point progress over server-sent events and query warm analytics;
// identical in-flight grid points are deduplicated across clients and one
// shared, byte-budgeted result + trace store serves everyone. See
// tools/loadgen for the matching load harness.
//
// Both modes run on the execute-once / replay-many trace engine: each
// workload is simulated once per process and its captured event stream is
// replayed to every technique and geometry (bit-identical results, several
// times faster on sweeps). Replays run as batched fan-out passes — one walk
// of the capture feeds every attached technique sink — and -replay-batch=false
// falls back to the legacy one-pass-per-sink replay as an escape hatch.
// With -trace-dir the captures are spilled as WMTRACE1 files and reloaded
// by later invocations; -cpuprofile and -memprofile write pprof profiles of
// whatever was run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"waymemo/internal/experiments"
	"waymemo/internal/report"
	"waymemo/internal/suite"
)

// expNames lists every accepted -exp value, in help order.
var expNames = []string{
	"all",
	"table1", "table2", "table3",
	"fig4", "fig5", "fig6", "fig7", "fig8",
	"ablation-d", "ablation-i", "consistency", "packet",
	"report",
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "explore" {
		runExplore(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "crossisa" {
		runCrossISA(os.Args[2:])
		return
	}
	exp := flag.String("exp", "all",
		"experiment to run: "+strings.Join(expNames, ", ")+
			" (the design-space mode is separate; see: wmx explore -h)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	par := flag.Int("j", 0, "benchmarks to simulate concurrently (0 = GOMAXPROCS)")
	traceDir := flag.String("trace-dir", "",
		"spill captured event traces to this directory (WMTRACE1); reruns replay instead of simulating")
	replayBatch := flag.Bool("replay-batch", true,
		"replay captures in one batched fan-out pass per workload (=false: one per-event pass per technique sink)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	validateJ(flag.CommandLine, *par, "wmx")

	which := strings.ToLower(*exp)
	known := false
	for _, n := range expNames {
		if which == n {
			known = true
			break
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "wmx: unknown experiment %q (valid: %s)\n",
			*exp, strings.Join(expNames, ", "))
		os.Exit(2)
	}
	// Profiling starts only after argument validation, so usage errors
	// cannot leave a truncated profile behind.
	stopProfiles := startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	emit := func(t report.Table) {
		if *csv {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}

	ctx := context.Background()

	// One trace cache shared by every run below: with -trace-dir, captures
	// spill to disk and later invocations replay instead of simulating; the
	// report mode — many suite passes over the same workloads — always
	// shares an in-memory cache, so each workload executes once and every
	// ablation replays its capture. The packet ablation is the exception:
	// each non-default packet size needs its own whole-suite capture that
	// nothing else reuses, so sharing the cache there would only pin
	// hundreds of MB of one-shot captures — it joins the sharing only when
	// the user asked for cross-run reuse with -trace-dir.
	base := []suite.Option{suite.WithParallelism(*par), suite.WithBatchReplay(*replayBatch)}
	common := base
	packetCommon := common
	if *traceDir != "" {
		tc, err := suite.NewDirTraceCache(*traceDir)
		exitOn(err)
		common = append(base[:len(base):len(base)], suite.WithTraceCache(tc))
		packetCommon = common
	} else if which == "report" {
		common = append(base[:len(base):len(base)], suite.WithTraceCache(suite.NewTraceCache()))
	}

	runSuite := func(banner string) *experiments.Results {
		fmt.Fprintln(os.Stderr, banner)
		r, err := suite.Run(ctx, append([]suite.Option{
			suite.WithProgress(func(p suite.Progress) {
				if p.Done {
					fmt.Fprintf(os.Stderr, "  %s done\n", p.Workload)
				}
			})}, common...)...)
		exitOn(err)
		return r
	}

	var results *experiments.Results
	if which == "all" || strings.HasPrefix(which, "fig") {
		results = runSuite("running the seven-benchmark suite...")
	}

	// ran guards the expNames list against drifting from the dispatch
	// below: every accepted name must produce output.
	ran := false
	want := func(name string) bool {
		if which == "all" || which == name {
			ran = true
			return true
		}
		return false
	}
	if want("table1") {
		emit(experiments.Table1())
	}
	if want("table2") {
		emit(experiments.Table2())
	}
	if want("table3") {
		emit(experiments.Table3())
	}
	if want("fig4") {
		emit(experiments.AccessTable(
			"Figure 4: tag and way accesses per D-cache access", experiments.Figure4(results)))
	}
	if want("fig5") {
		emit(experiments.PowerTable(
			"Figure 5: D-cache power (mW)", experiments.Figure5(results)))
	}
	if want("fig6") {
		emit(experiments.AccessTable(
			"Figure 6: tag and way accesses per I-cache access", experiments.Figure6(results)))
	}
	if want("fig7") {
		emit(experiments.PowerTable(
			"Figure 7: I-cache power (mW)", experiments.Figure7(results)))
	}
	if want("fig8") {
		rows := experiments.Figure8(results)
		emit(experiments.Figure8Table(rows))
		avg, max := experiments.AverageSaving(rows)
		fmt.Printf("average total saving: %s   maximum: %s\n\n", report.Pct(avg), report.Pct(max))
	}
	// Studies beyond the paper's figures (not part of -exp all).
	if which == "ablation-d" {
		ran = true
		rows, err := experiments.AblationD(ctx, common...)
		exitOn(err)
		emit(experiments.AblationTable("D-cache techniques (7-benchmark average)", rows))
	}
	if which == "ablation-i" {
		ran = true
		rows, err := experiments.AblationI(ctx, common...)
		exitOn(err)
		emit(experiments.AblationTable("I-cache techniques (7-benchmark average)", rows))
	}
	if which == "consistency" {
		ran = true
		rows, err := experiments.AblationConsistency(ctx, common...)
		exitOn(err)
		emit(experiments.ConsistencyTable(rows))
	}
	if which == "packet" {
		ran = true
		rows, err := experiments.AblationPacket(ctx, packetCommon...)
		exitOn(err)
		emit(experiments.PacketTable(rows))
	}
	if which == "report" {
		// Regenerate EXPERIMENTS.md on stdout: the full suite plus every
		// ablation study.
		ran = true
		results := runSuite("running the seven-benchmark suite and all ablations...")
		ablD, err := experiments.AblationD(ctx, common...)
		exitOn(err)
		ablI, err := experiments.AblationI(ctx, common...)
		exitOn(err)
		cons, err := experiments.AblationConsistency(ctx, common...)
		exitOn(err)
		packet, err := experiments.AblationPacket(ctx, packetCommon...)
		exitOn(err)
		experiments.WriteMarkdown(os.Stdout, results, ablD, ablI, cons, packet)
	}
	if !ran {
		// Unreachable while expNames and the dispatch above agree; catches
		// a name added to the list without a branch.
		fmt.Fprintf(os.Stderr, "wmx: experiment %q accepted but not dispatched\n", *exp)
		os.Exit(1)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmx:", err)
		flushProfiles()
		os.Exit(1)
	}
}
