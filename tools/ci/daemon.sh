#!/usr/bin/env bash
# Shared boot/drain shell for the CI jobs that exercise a real `wmx serve`
# daemon (serve-smoke, chaos-smoke, kill-resume-smoke). Expects the daemon
# binary at /tmp/wmx.
#
#   daemon.sh boot <name> <port> [extra `wmx serve` flags...]
#       Starts the daemon on 127.0.0.1:<port> with a /tmp/wmx-<name>-store
#       store, logs to /tmp/<name>.log, records the pid in /tmp/<name>.pid
#       and waits up to 10s for /healthz to come up.
#
#   daemon.sh drain <name> <signal>
#       Signals the daemon (INT or TERM), asserts it exits within 10s and
#       prints its log (the shutdown stats) either way. A never-booted
#       daemon is not an error, so drain can run in an `if: always()` step.
#
#   daemon.sh kill <name>
#       SIGKILLs the daemon — the crash half of the kill-resume job: no
#       drain, no shutdown stats, the store dir and journal left exactly as
#       the process last fsynced them. Waits until the pid is gone.
set -euo pipefail

cmd=${1:?usage: daemon.sh boot|drain ...}
shift
case "$cmd" in
boot)
  name=${1:?boot: missing daemon name}
  port=${2:?boot: missing port}
  shift 2
  /tmp/wmx serve -listen "127.0.0.1:$port" -store-dir "/tmp/wmx-$name-store" \
    -store-budget 256MiB "$@" 2>"/tmp/$name.log" &
  echo $! >"/tmp/$name.pid"
  for _ in $(seq 1 50); do
    if curl -sf "http://127.0.0.1:$port/healthz" >/dev/null; then
      exit 0
    fi
    sleep 0.2
  done
  echo "daemon '$name' never came up" >&2
  cat "/tmp/$name.log" >&2
  exit 1
  ;;
drain)
  name=${1:?drain: missing daemon name}
  sig=${2:?drain: missing signal}
  if [ ! -f "/tmp/$name.pid" ]; then
    echo "daemon '$name' was never booted; nothing to drain" >&2
    exit 0
  fi
  pid=$(cat "/tmp/$name.pid")
  kill "-$sig" "$pid" 2>/dev/null || true
  for _ in $(seq 1 50); do
    if ! kill -0 "$pid" 2>/dev/null; then
      cat "/tmp/$name.log"
      exit 0
    fi
    sleep 0.2
  done
  echo "daemon '$name' did not drain within 10s of SIG$sig" >&2
  cat "/tmp/$name.log" >&2
  exit 1
  ;;
kill)
  name=${1:?kill: missing daemon name}
  pid=$(cat "/tmp/$name.pid")
  kill -KILL "$pid" 2>/dev/null || true
  for _ in $(seq 1 50); do
    if ! kill -0 "$pid" 2>/dev/null; then
      exit 0
    fi
    sleep 0.2
  done
  echo "daemon '$name' survived SIGKILL?!" >&2
  exit 1
  ;;
*)
  echo "daemon.sh: unknown command '$cmd' (want boot, drain or kill)" >&2
  exit 2
  ;;
esac
