// loadgen replays overlapping client sweeps against a running wmx serve
// daemon and asserts the service layer's promises: N clients sweeping
// overlapping grids cost one simulation per unique grid point (singleflight
// + shared store), a warm rerun simulates nothing, and warm analytics
// answer fast. It is the load half of the serve-smoke CI job; point it at
// any daemon to measure dedup under real concurrency.
//
// Usage:
//
//	wmx serve -listen 127.0.0.1:8077 -store-dir /tmp/wmx-store &
//	go run ./tools/loadgen -addr http://127.0.0.1:8077 -clients 100 \
//	    -sets "128,256|256,512" -min-dedup 0.9 -expect-unique
//
// Axis flags (-sets, -ways, -lines, -mab-tags, -mab-sets, -workloads) hold
// one or more variants separated by '|': client i submits variant
// i % len(variants), so two variants with overlapping axes give the daemon
// overlap to dedup both within a variant (identical clients) and across
// variants (shared grid points). Workload lists are comma-separated names
// or synthetic specs; a spec's own commas are understood.
//
// With -retries N the clients ride the typed retry loop (capped exponential
// backoff + jitter, Retry-After honored), which is how loadgen doubles as
// the chaos harness: point it at a daemon running -fault-spec, allow
// partial failure with -min-success, and assert what must still hold —
// -verify proves every completed grid bit-identical across clients, faults
// or not.
//
// Assertions (any failure exits nonzero):
//
//	-min-dedup R       overall dedup rate (points served without a
//	                   simulation / points requested) must be >= R
//	-expect-unique     simulations must equal the variant set's unique
//	                   grid points exactly (requires a cold store; do not
//	                   combine with a fault spec — injected faults cause
//	                   legitimate re-simulations)
//	-max-warm-sims N   warm rerun may cost at most N simulations (default 0)
//	-min-success R     fraction of clients whose sweep completed must be
//	                   >= R (negative disables; >= 0 also tolerates the
//	                   failures instead of aborting on the first)
//	-max-shed R        shed submissions / all submissions must be <= R
//	                   (negative disables)
//	-verify            every successful client's grid must be bit-identical
//	                   to its variant's other clients
//	-min-resumed N     at least N sweeps must have been resurrected from the
//	                   daemon's journal during the run (kill-resume harness;
//	                   -1 disables)
//
// Kill-resume mode: -grid-out FILE writes variant 0's full grid as JSON.
// The CI kill-resume job runs loadgen against a daemon that is SIGKILLed
// and rebooted mid-run (the retrying clients reattach or idempotently
// resubmit by content-derived sweep ID), asserts -min-resumed 1, and
// compares the -grid-out file byte-for-byte against an uninterrupted
// reference run's.
//
// Exit codes: 0 success, 1 assertion failed (wrong results included),
// 2 bad flags, 3 daemon unreachable, 4 run error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"waymemo/internal/serve"
	"waymemo/internal/serve/client"
	"waymemo/internal/serve/load"
	"waymemo/internal/workloads"
)

// Exit codes, so CI and scripts can tell an assertion failure from an
// environment problem.
const (
	exitAssertion   = 1
	exitUsage       = 2
	exitUnreachable = 3
	exitRunError    = 4
)

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8077", "daemon base URL")
		clients    = flag.Int("clients", 100, "concurrent sweep clients")
		domain     = flag.String("domain", "data", "cache domain: data or fetch")
		sets       = flag.String("sets", "64,128", "sets axis variants ('|'-separated)")
		ways       = flag.String("ways", "", "ways axis variants")
		lines      = flag.String("lines", "", "line-bytes axis variants")
		mabTags    = flag.String("mab-tags", "1", "MAB tag-entry axis variants")
		mabSets    = flag.String("mab-sets", "4", "MAB set-entry axis variants")
		wls        = flag.String("workloads", "synth:hotloop,fp=1KiB,n=2048", "workload list variants ('|'-separated)")
		timeout    = flag.Duration("timeout", 10*time.Minute, "overall deadline")
		retries    = flag.Int("retries", 1, "total attempts per client operation (1 = no retrying)")
		minDedup   = flag.Float64("min-dedup", -1, "fail unless dedup rate >= this (-1 disables)")
		expectUq   = flag.Bool("expect-unique", false, "fail unless simulations == unique points (cold store)")
		maxWarm    = flag.Int64("max-warm-sims", 0, "fail if the warm rerun simulates more than this")
		minSuccess = flag.Float64("min-success", -1, "fail unless client success rate >= this; >= 0 also tolerates failures (-1 disables)")
		maxShed    = flag.Float64("max-shed", -1, "fail unless shed rate <= this (-1 disables)")
		verify     = flag.Bool("verify", false, "fail unless same-variant client grids are bit-identical")
		skipWarm   = flag.Bool("skip-warm", false, "skip the warm rerun and warm query phases")
		asJSON     = flag.Bool("json", false, "emit the report as JSON")
		gridOut    = flag.String("grid-out", "", "write variant 0's full grid as JSON to this file")
		minResumed = flag.Int64("min-resumed", -1, "fail unless the daemon resumed at least this many journaled sweeps (-1 disables)")
	)
	flag.Parse()

	variants, err := buildVariants(*domain, *sets, *ways, *lines, *mabTags, *mabSets, *wls)
	if err != nil {
		fatal(exitUsage, "%v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	c := client.New(*addr, client.WithRetry(client.DefaultRetryPolicy(*retries)))
	if err := c.Health(ctx); err != nil {
		fatal(exitUnreachable, "daemon not reachable at %s: %v", *addr, err)
	}
	rep, err := load.Run(ctx, c, load.Options{
		Clients:       *clients,
		Variants:      variants,
		SkipWarm:      *skipWarm,
		AllowFailures: *minSuccess >= 0,
		Verify:        *verify,
		CaptureGrid:   *gridOut != "",
	})
	if err != nil {
		if errors.Is(err, load.ErrWrongResult) {
			fatal(exitAssertion, "%v", err)
		}
		fatal(exitRunError, "%v", err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Println(rep)
	}

	failed := false
	check := func(ok bool, format string, args ...any) {
		if !ok {
			fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
			failed = true
		}
	}
	if *minDedup >= 0 {
		check(rep.DedupRate >= *minDedup, "dedup rate %.3f < required %.3f", rep.DedupRate, *minDedup)
	}
	if *expectUq {
		check(rep.Simulations == int64(rep.UniquePoints),
			"simulations %d != unique points %d (store not cold, or dedup broken)",
			rep.Simulations, rep.UniquePoints)
	}
	if !*skipWarm {
		check(rep.WarmRerunSimulations <= *maxWarm,
			"warm rerun simulated %d points (allowed %d)", rep.WarmRerunSimulations, *maxWarm)
	}
	if *minSuccess >= 0 {
		check(rep.SuccessRate >= *minSuccess,
			"success rate %.3f < required %.3f", rep.SuccessRate, *minSuccess)
	}
	if *maxShed >= 0 {
		check(rep.ShedRate <= *maxShed,
			"shed rate %.3f > allowed %.3f", rep.ShedRate, *maxShed)
	}
	if *minResumed >= 0 {
		check(rep.ResumedSweeps >= *minResumed,
			"daemon resumed %d journaled sweeps, required %d", rep.ResumedSweeps, *minResumed)
	}
	if *gridOut != "" {
		blob, err := json.Marshal(rep.Grid)
		if err != nil {
			fatal(exitRunError, "marshal grid: %v", err)
		}
		if err := os.WriteFile(*gridOut, blob, 0o666); err != nil {
			fatal(exitRunError, "write %s: %v", *gridOut, err)
		}
	}
	if failed {
		os.Exit(exitAssertion)
	}
}

func fatal(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(code)
}

// buildVariants expands the '|'-separated axis flags into sweep requests:
// variant i takes element i (mod length) of every axis's variant list, so
// axes with fewer variants repeat against the longer ones.
func buildVariants(domain, sets, ways, lines, mabTags, mabSets, wls string) ([]serve.SweepRequest, error) {
	setsV, err := intVariants("sets", sets)
	if err != nil {
		return nil, err
	}
	waysV, err := intVariants("ways", ways)
	if err != nil {
		return nil, err
	}
	linesV, err := intVariants("lines", lines)
	if err != nil {
		return nil, err
	}
	tagsV, err := intVariants("mab-tags", mabTags)
	if err != nil {
		return nil, err
	}
	msetsV, err := intVariants("mab-sets", mabSets)
	if err != nil {
		return nil, err
	}
	var wlsV [][]string
	for _, v := range strings.Split(wls, "|") {
		wlsV = append(wlsV, workloads.SplitList(v))
	}

	n := 1
	for _, l := range []int{len(setsV), len(waysV), len(linesV), len(tagsV), len(msetsV), len(wlsV)} {
		if l > n {
			n = l
		}
	}
	pick := func(vv [][]int, i int) []int { return vv[i%len(vv)] }
	out := make([]serve.SweepRequest, n)
	for i := range out {
		out[i] = serve.SweepRequest{
			Domain:     domain,
			Sets:       pick(setsV, i),
			Ways:       pick(waysV, i),
			LineBytes:  pick(linesV, i),
			TagEntries: pick(tagsV, i),
			SetEntries: pick(msetsV, i),
			Workloads:  wlsV[i%len(wlsV)],
		}
	}
	return out, nil
}

// intVariants parses "a,b|c,d" into [[a b] [c d]]. An empty flag is one
// empty variant (the axis keeps the daemon's default).
func intVariants(name, s string) ([][]int, error) {
	var out [][]int
	for _, v := range strings.Split(s, "|") {
		var vals []int
		for _, f := range strings.Split(v, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			n, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("loadgen: -%s: bad value %q", name, f)
			}
			vals = append(vals, n)
		}
		out = append(out, vals)
	}
	return out, nil
}
