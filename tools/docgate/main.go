// docgate is the documentation gate: it fails when any Go package under
// the given roots lacks a package-level doc comment. CI runs it over
// internal, cmd, examples and tools, so every package keeps the godoc
// header that states its role (and, for the model packages, which paper
// section or figure it implements); docgate_test.go enforces the same gate
// under plain `go test ./...`.
//
// Usage:
//
//	go run ./tools/docgate internal cmd examples tools
//
// A package passes when at least one of its non-test files carries a doc
// comment immediately above the package clause. Testdata and hidden
// directories are skipped.
package main

import (
	"fmt"
	"os"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"internal", "cmd"}
	}
	missing, err := Check(roots)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docgate:", err)
		os.Exit(1)
	}
	if len(missing) > 0 {
		fmt.Fprintln(os.Stderr, "docgate: packages missing a package doc comment:")
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
		os.Exit(1)
	}
	fmt.Printf("docgate: %d roots clean\n", len(roots))
}
