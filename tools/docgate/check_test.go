package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepositoryIsDocumented is the docs gate under `go test ./...`: every
// package under internal, cmd, examples and tools must carry a package doc
// comment.
func TestRepositoryIsDocumented(t *testing.T) {
	root := filepath.Join("..", "..")
	var roots []string
	for _, d := range []string{"internal", "cmd", "examples", "tools"} {
		roots = append(roots, filepath.Join(root, d))
	}
	missing, err := Check(roots)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range missing {
		t.Errorf("package %s has no package doc comment", dir)
	}
}

func TestCheckFlagsUndocumentedPackage(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("good/a.go", "// Package good is documented.\npackage good\n")
	write("good/b.go", "package good\n") // one documented file is enough
	write("bad/a.go", "package bad\n")
	// A doc comment in a test file does not document the package.
	write("testonly/a.go", "package testonly\n")
	write("testonly/a_test.go", "// Package testonly pretends.\npackage testonly\n")
	// Detached comments (blank line before the clause) are not doc comments.
	write("detached/a.go", "// A stray comment.\n\npackage detached\n")
	write("skip/testdata/x.go", "package ignoreme\n")
	write("skip/a.go", "// Package skip is documented.\npackage skip\n")

	missing, err := Check([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		filepath.Join(dir, "bad"):      true,
		filepath.Join(dir, "testonly"): true,
		filepath.Join(dir, "detached"): true,
	}
	if len(missing) != len(want) {
		t.Fatalf("missing = %v, want %v", missing, want)
	}
	for _, m := range missing {
		if !want[m] {
			t.Errorf("unexpected flagged package %s", m)
		}
	}
}
