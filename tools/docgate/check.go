package main

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Check walks the given root directories and returns every directory that
// contains Go files but whose package carries no doc comment. Directories
// named testdata and hidden directories are skipped; _test.go files do not
// count toward (or against) a package's documentation.
func Check(roots []string) ([]string, error) {
	var missing []string
	for _, root := range roots {
		byDir := map[string]bool{} // dir → has a package doc comment
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			dir := filepath.Dir(path)
			// PackageClauseOnly keeps the doc comment attached to the
			// package clause while skipping the rest of the file.
			f, err := parser.ParseFile(token.NewFileSet(), path, nil,
				parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				return err
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				byDir[dir] = true
			} else if _, seen := byDir[dir]; !seen {
				byDir[dir] = false
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for dir, ok := range byDir {
			if !ok {
				missing = append(missing, dir)
			}
		}
	}
	sort.Strings(missing)
	return missing, nil
}
