// benchrec records the repository's headline wall-clock timings into a
// BENCH_<n>.json file, starting the performance trajectory the roadmap asks
// for: each perf-focused PR runs it once and commits the result, so
// regressions and wins are visible across the PR sequence.
//
// It measures, on the current machine:
//
//   - suite_live_ms: one full seven-benchmark suite pass, every technique
//     attached, live execution (the cost of regenerating Figures 4-8);
//   - suite_replay_ms: the same pass replayed from a warm trace cache on
//     the legacy path — one per-event pass per technique sink;
//   - suite_replay_batched_ms: the same warm pass on the batched fan-out
//     engine — one pass per workload feeding all eight techniques — plus
//     fanout_sinks_per_pass (fan-out width) and fanout_events_per_sec
//     (per-sink event deliveries over the batched pass's wall time);
//   - explore_live_ms / explore_shared_ms: a cold multi-geometry
//     design-space sweep (24 geometries × 2 workloads) with the
//     execute-once / replay-many engine off and on;
//   - explore_speedup: live / shared, the engine's headline win;
//   - serve_dedup_rate / serve_warm_query_ms: the service layer under the
//     standard load harness (internal/serve/load) against an in-process
//     daemon — 64 overlapping clients, two variants sharing a grid point;
//     the dedup rate counts points served without a simulation.
//
// Usage:
//
//	go run ./tools/benchrec [-o BENCH_6.json] [-j N]
//	go run ./tools/benchrec -o /tmp/bench.json -compare BENCH_6.json -tolerance 20%
//
// With -compare, the run additionally gates against a committed baseline:
// the machine-portable ratio metrics — the suite replay rates (live time
// over per-sink replay time, and live time over batched replay time), the
// explore trace-sharing speedup and the serve dedup rate — must not fall
// more than -tolerance
// below the baseline's, or the process exits nonzero. Metrics a baseline
// predates (BENCH_3 has no batched replay) are skipped, so the gate works
// against any committed BENCH_<n>.json. The absolute millisecond timings
// are never gated (they track the machine, not the code); the ratios cancel
// machine speed out, which is what lets CI compare its run against a number
// recorded elsewhere.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"waymemo/internal/explore"
	"waymemo/internal/serve"
	"waymemo/internal/serve/client"
	"waymemo/internal/serve/load"
	"waymemo/internal/suite"
	"waymemo/internal/workloads"
)

// record is the BENCH_<n>.json schema.
type record struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Parallel   int     `json:"parallelism"`
	SuiteLive  float64 `json:"suite_live_ms"`
	SuiteRepl  float64 `json:"suite_replay_ms"`
	// SuiteReplBatched times the warm suite pass on the batched fan-out
	// engine; SinksPerPass and EventsPerSec describe that pass's fan-out
	// shape and delivery throughput (absent from pre-batching baselines).
	SuiteReplBatched float64 `json:"suite_replay_batched_ms,omitempty"`
	SinksPerPass     float64 `json:"fanout_sinks_per_pass,omitempty"`
	EventsPerSec     float64 `json:"fanout_events_per_sec,omitempty"`
	Explore          struct {
		Geometries int     `json:"geometries"`
		Workloads  int     `json:"workloads"`
		Points     int     `json:"points"`
		LiveMS     float64 `json:"explore_live_ms"`
		SharedMS   float64 `json:"explore_shared_ms"`
		Speedup    float64 `json:"explore_speedup"`
	} `json:"explore_sweep_cold"`
	// Serve is the service layer's load figure (nil in pre-serve
	// baselines): the standard load harness against an in-process daemon.
	Serve *serveRecord `json:"serve_load,omitempty"`
}

// serveRecord captures the serve-load metrics: the dedup rate is a
// machine-portable ratio (it depends only on the variant overlap and the
// dedup machinery, never on machine speed), so it is gated; the warm query
// latency is informational.
type serveRecord struct {
	Clients      int     `json:"clients"`
	Points       int     `json:"points"`
	UniquePoints int     `json:"unique_points"`
	Simulations  int64   `json:"simulations"`
	DedupRate    float64 `json:"serve_dedup_rate"`
	WarmQueryMS  float64 `json:"serve_warm_query_ms"`
	ElapsedMS    float64 `json:"elapsed_ms"`
}

// serveDedup is the gateable serve ratio, 0 when the baseline predates the
// service layer.
func (r *record) serveDedup() float64 {
	if r.Serve == nil {
		return 0
	}
	return r.Serve.DedupRate
}

func timeIt(name string, f func() error) float64 {
	fmt.Fprintf(os.Stderr, "benchrec: %s...", name)
	t0 := time.Now()
	if err := f(); err != nil {
		fmt.Fprintf(os.Stderr, "\nbenchrec: %s: %v\n", name, err)
		os.Exit(1)
	}
	d := time.Since(t0)
	fmt.Fprintf(os.Stderr, " %.0fms\n", d.Seconds()*1000)
	return d.Seconds() * 1000
}

// replayRate is the suite's execute-once / replay-many win: live suite
// time over warm per-sink replay time.
func (r *record) replayRate() float64 { return r.SuiteLive / r.SuiteRepl }

// batchedReplayRate is the batched fan-out engine's win: live suite time
// over warm batched replay time (0 for baselines that predate batching,
// which the compare gate skips).
func (r *record) batchedReplayRate() float64 {
	if r.SuiteReplBatched == 0 {
		return 0
	}
	return r.SuiteLive / r.SuiteReplBatched
}

// parseTolerance accepts "20%" or "0.2".
func parseTolerance(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad tolerance %q", s)
	}
	if pct {
		v /= 100
	}
	if v < 0 || v >= 1 {
		return 0, fmt.Errorf("tolerance %q outside [0%%, 100%%)", s)
	}
	return v, nil
}

// compareBaseline gates the current ratio metrics against a baseline file.
// It returns an error listing every regressed metric.
func compareBaseline(cur *record, baselinePath string, tol float64) error {
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base record
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	var regressions []string
	check := func(name string, got, want float64) {
		// Skip metrics absent from an older baseline schema; the negated
		// form also catches the NaN a missing-field 0/0 ratio produces.
		if !(want > 0) {
			return
		}
		floor := want * (1 - tol)
		ok := "ok"
		if got < floor {
			ok = "REGRESSED"
			regressions = append(regressions,
				fmt.Sprintf("%s %.2fx below floor %.2fx (baseline %.2fx - %.0f%%)", name, got, floor, want, tol*100))
		}
		fmt.Fprintf(os.Stderr, "benchrec: compare %-22s %6.2fx vs baseline %6.2fx (floor %.2fx) %s\n",
			name, got, want, floor, ok)
	}
	check("suite-replay-rate", cur.replayRate(), base.replayRate())
	check("suite-replay-batched-rate", cur.batchedReplayRate(), base.batchedReplayRate())
	check("explore-speedup", cur.Explore.Speedup, base.Explore.Speedup)
	check("serve-dedup-rate", cur.serveDedup(), base.serveDedup())
	if regressions != nil {
		return fmt.Errorf("ratio regressions vs %s: %s", baselinePath, strings.Join(regressions, "; "))
	}
	return nil
}

func main() {
	out := flag.String("o", "BENCH_6.json", "output file")
	par := flag.Int("j", 0, "parallelism passed to the runners (0 = GOMAXPROCS)")
	compare := flag.String("compare", "", "baseline BENCH_<n>.json `file`; exit nonzero if a ratio metric regresses beyond -tolerance")
	tolerance := flag.String("tolerance", "20%", "allowed ratio-metric regression for -compare (\"20%\" or \"0.2\")")
	flag.Parse()
	tol, err := parseTolerance(*tolerance)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(2)
	}
	ctx := context.Background()

	var r record
	r.Date = time.Now().UTC().Format(time.RFC3339)
	r.GoVersion = runtime.Version()
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)
	r.Parallel = *par

	// Warm the per-process assembly/predecode memos first so every mode
	// below pays identical build costs and the timings isolate simulation.
	for _, w := range workloads.All() {
		if _, err := w.Build(); err != nil {
			fmt.Fprintln(os.Stderr, "benchrec:", err)
			os.Exit(1)
		}
	}

	r.SuiteLive = timeIt("suite live", func() error {
		_, err := suite.Run(ctx, suite.WithParallelism(*par))
		return err
	})
	tc := suite.NewTraceCache()
	if _, err := suite.Run(ctx, suite.WithParallelism(*par), suite.WithTraceCache(tc)); err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	r.SuiteRepl = timeIt("suite replay per-sink (warm)", func() error {
		_, err := suite.Run(ctx, suite.WithParallelism(*par), suite.WithTraceCache(tc),
			suite.WithBatchReplay(false))
		return err
	})
	before := tc.Stats()
	r.SuiteReplBatched = timeIt("suite replay batched (warm)", func() error {
		_, err := suite.Run(ctx, suite.WithParallelism(*par), suite.WithTraceCache(tc))
		return err
	})
	// Fan-out shape and delivery throughput of the batched pass alone.
	after := tc.Stats()
	if passes := after.FanOutPasses - before.FanOutPasses; passes > 0 {
		r.SinksPerPass = float64(after.FanOutSinks-before.FanOutSinks) / float64(passes)
		r.EventsPerSec = float64(after.FanOutDeliveries-before.FanOutDeliveries) /
			(r.SuiteReplBatched / 1000)
	}

	// The same sweep bench_test.go times, so `go test -bench` and the
	// committed numbers agree on what they measure.
	s := explore.EngineBenchSpace()
	r.Explore.Geometries = len(s.Geometries())
	r.Explore.Workloads = len(s.Workloads)
	r.Explore.Points = s.NumPoints()
	r.Explore.LiveMS = timeIt("explore sweep live", func() error {
		_, err := explore.Run(ctx, s, explore.WithParallelism(*par),
			explore.WithTraceSharing(false))
		return err
	})
	r.Explore.SharedMS = timeIt("explore sweep shared", func() error {
		_, err := explore.Run(ctx, s, explore.WithParallelism(*par))
		return err
	})
	r.Explore.Speedup = r.Explore.LiveMS / r.Explore.SharedMS

	// The service layer under the standard load harness: an in-process
	// daemon, 64 overlapping clients cycling two variants that share a grid
	// point. The dedup rate is fully determined by the variant overlap on a
	// cold store (1 - unique/requested), which is what makes it gateable.
	storeDir, err := os.MkdirTemp("", "benchrec-serve-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(storeDir)
	srv, err := serve.New(serve.Config{StoreDir: storeDir, Parallelism: *par})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	ts := httptest.NewServer(srv)
	variants := []serve.SweepRequest{
		{Sets: []int{64, 128}, TagEntries: []int{1}, SetEntries: []int{4},
			Workloads: []string{"synth:hotloop,fp=1KiB,n=8192"}},
		{Sets: []int{64, 256}, TagEntries: []int{1}, SetEntries: []int{4},
			Workloads: []string{"synth:hotloop,fp=1KiB,n=8192"}},
	}
	var rep *load.Report
	timeIt("serve load (64 clients)", func() error {
		var err error
		rep, err = load.Run(ctx, client.New(ts.URL), load.Options{Clients: 64, Variants: variants})
		return err
	})
	ts.Close()
	srv.Close()
	r.Serve = &serveRecord{
		Clients:      rep.Clients,
		Points:       rep.Points,
		UniquePoints: rep.UniquePoints,
		Simulations:  rep.Simulations,
		DedupRate:    rep.DedupRate,
		WarmQueryMS:  rep.WarmQueryMS,
		ElapsedMS:    rep.ElapsedMS,
	}

	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchrec: wrote %s (explore speedup %.2fx)\n", *out, r.Explore.Speedup)
	if *compare != "" {
		if err := compareBaseline(&r, *compare, tol); err != nil {
			fmt.Fprintln(os.Stderr, "benchrec:", err)
			os.Exit(1)
		}
	}
}
