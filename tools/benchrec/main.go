// benchrec records the repository's headline wall-clock timings into a
// BENCH_<n>.json file, starting the performance trajectory the roadmap asks
// for: each perf-focused PR runs it once and commits the result, so
// regressions and wins are visible across the PR sequence.
//
// It measures, on the current machine:
//
//   - suite_live_ms: one full seven-benchmark suite pass, every technique
//     attached, live execution (the cost of regenerating Figures 4-8);
//   - suite_replay_ms: the same pass replayed from a warm trace cache on
//     the legacy path — one per-event pass per technique sink;
//   - suite_replay_batched_ms: the same warm pass on the batched fan-out
//     engine — one pass per workload feeding all eight techniques — plus
//     fanout_sinks_per_pass (fan-out width) and fanout_events_per_sec
//     (per-sink event deliveries over the batched pass's wall time);
//   - explore_live_ms / explore_shared_ms: a cold multi-geometry
//     design-space sweep (24 geometries × 2 workloads) with the
//     execute-once / replay-many engine off and on;
//   - explore_speedup: live / shared, the engine's headline win;
//   - serve_dedup_rate / serve_warm_query_ms: the service layer under the
//     standard load harness (internal/serve/load) against an in-process
//     daemon — 64 overlapping clients, two variants sharing a grid point;
//     the dedup rate counts points served without a simulation;
//   - trace_columns: the WMTRACE2 compressed-column footprint over the
//     paper workloads' captures — encoded bytes per event for both file
//     formats, the in-memory decoded event size, and the v1/v2
//     compression_ratio;
//   - scaling_matrix: the warm batched fan-out replay and the cold shared
//     explore sweep repeated at GOMAXPROCS ∈ {1, 2, 4, NumCPU} (clamped to
//     the machine; -scale-procs overrides), recording each point's
//     aggregate fanout_events_per_sec and its speedup-per-core, plus
//     scaling_replay_ratio — the best ≥2-core replay rate over the 1-core
//     rate. On a single-core machine the matrix degenerates to its 1-proc
//     point: the run prints a loud note, records single_core: true, and
//     omits the ratio;
//   - serve_chaos: the same service under seeded fault injection (I/O
//     errors, short reads, latency spikes, connection drops) with a
//     deliberately tiny admission cap, driven by retrying clients —
//     recording chaos_success_rate, shed_rate and faults_injected. These
//     are informational, never gated (they are stochastic by construction);
//     the phase's hard invariant — every completed grid bit-identical
//     across clients — is asserted in-line and fails the run on violation.
//
// Usage:
//
//	go run ./tools/benchrec [-o BENCH_8.json] [-j N]
//	go run ./tools/benchrec -o /tmp/bench.json -compare BENCH_7.json -tolerance 20%
//	go run ./tools/benchrec -scale-procs 1,2 -min-scaling 1.15
//
// With -compare, the run additionally gates against a committed baseline:
// the machine-portable ratio metrics — the suite replay rates (live time
// over per-sink replay time, and live time over batched replay time), the
// explore trace-sharing speedup, the serve dedup rate, the trace
// compression ratio (which must also clear an absolute 2.0x floor) and the
// multi-core scaling_replay_ratio — must not fall more than -tolerance
// below the baseline's, or the process exits nonzero. Metrics a baseline
// predates (BENCH_3 has no batched replay; BENCH_6 no scaling matrix) are
// skipped, as are scaling ratios on single-core machines, so the gate works
// against any committed BENCH_<n>.json. -min-scaling sets an absolute floor
// for scaling_replay_ratio independent of any baseline — what CI's
// multi-core runners use, since a committed single-core baseline has no
// ratio to compare against. The absolute millisecond timings are never
// gated (they track the machine, not the code); the ratios cancel machine
// speed out, which is what lets CI compare its run against a number
// recorded elsewhere.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
	"unsafe"

	"waymemo/internal/explore"
	"waymemo/internal/fault"
	"waymemo/internal/serve"
	"waymemo/internal/serve/client"
	"waymemo/internal/serve/load"
	"waymemo/internal/suite"
	"waymemo/internal/trace"
	"waymemo/internal/workloads"
)

// record is the BENCH_<n>.json schema.
type record struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Parallel   int     `json:"parallelism"`
	SuiteLive  float64 `json:"suite_live_ms"`
	SuiteRepl  float64 `json:"suite_replay_ms"`
	// SuiteReplBatched times the warm suite pass on the batched fan-out
	// engine; SinksPerPass and EventsPerSec describe that pass's fan-out
	// shape and delivery throughput (absent from pre-batching baselines).
	SuiteReplBatched float64 `json:"suite_replay_batched_ms,omitempty"`
	SinksPerPass     float64 `json:"fanout_sinks_per_pass,omitempty"`
	EventsPerSec     float64 `json:"fanout_events_per_sec,omitempty"`
	Explore          struct {
		Geometries int     `json:"geometries"`
		Workloads  int     `json:"workloads"`
		Points     int     `json:"points"`
		LiveMS     float64 `json:"explore_live_ms"`
		SharedMS   float64 `json:"explore_shared_ms"`
		Speedup    float64 `json:"explore_speedup"`
	} `json:"explore_sweep_cold"`
	// Serve is the service layer's load figure (nil in pre-serve
	// baselines): the standard load harness against an in-process daemon.
	Serve *serveRecord `json:"serve_load,omitempty"`
	// Chaos is the fault-injection load figure (nil in pre-fault
	// baselines). Its rates are stochastic and informational — the compare
	// gate never reads them; correctness under faults is asserted by the
	// phase itself.
	Chaos *chaosRecord `json:"serve_chaos,omitempty"`
	// TraceColumns is the WMTRACE2 compressed-column footprint over the
	// paper workloads' captures (nil in pre-column baselines).
	TraceColumns *traceColumnsRecord `json:"trace_columns,omitempty"`
	// SingleCore is true when the machine cannot produce a multi-core
	// scaling point, so ScalingRatio is absent and downstream gates must
	// rely on -min-scaling runs on wider machines.
	SingleCore bool `json:"single_core,omitempty"`
	// Scaling is the GOMAXPROCS matrix; ScalingRatio the best ≥2-proc
	// batched replay rate over the 1-proc rate (0 when single-core).
	Scaling      []scalePoint `json:"scaling_matrix,omitempty"`
	ScalingRatio float64      `json:"scaling_replay_ratio,omitempty"`
}

// scalePoint is one GOMAXPROCS point of the scaling matrix: the warm
// batched fan-out replay and the cold shared explore sweep re-run with both
// the scheduler's processor count and the runners' -j pinned to Procs.
type scalePoint struct {
	Procs int `json:"procs"`
	// ReplayBatchedMS and EventsPerSec describe the warm batched suite
	// replay at this width: wall time, and per-sink event deliveries over
	// that time (the aggregate fan-out throughput the point achieves).
	ReplayBatchedMS float64 `json:"suite_replay_batched_ms"`
	EventsPerSec    float64 `json:"fanout_events_per_sec"`
	// ExploreSharedMS is a cold shared-trace explore sweep at this width.
	ExploreSharedMS float64 `json:"explore_shared_ms"`
	// SpeedupPerCore is (EventsPerSec / 1-proc EventsPerSec) / Procs — 1.0
	// means perfect linear scaling, the curve's droop is the contention
	// cost.
	SpeedupPerCore float64 `json:"speedup_per_core"`
}

// traceColumnsRecord compares the spill formats over the same captures: the
// paper workloads' full event streams encoded as WMTRACE1 (fixed records),
// WMTRACE2 (delta/varint columns) and the decoded in-memory events. The
// compression ratio is machine-portable (pure function of the workloads'
// address streams), so it is gated.
type traceColumnsRecord struct {
	Events          int     `json:"events"`
	V1BytesPerEvent float64 `json:"wmtrace1_bytes_per_event"`
	V2BytesPerEvent float64 `json:"wmtrace2_bytes_per_event"`
	// DecodedBytesPerEvent prices the replay-time representation the
	// columns decode into, averaged over the fetch/data mix.
	DecodedBytesPerEvent float64 `json:"decoded_bytes_per_event"`
	// CompressionRatio is WMTRACE1 bytes over WMTRACE2 bytes.
	CompressionRatio float64 `json:"compression_ratio"`
}

// serveRecord captures the serve-load metrics: the dedup rate is a
// machine-portable ratio (it depends only on the variant overlap and the
// dedup machinery, never on machine speed), so it is gated; the warm query
// latency is informational.
type serveRecord struct {
	Clients      int     `json:"clients"`
	Points       int     `json:"points"`
	UniquePoints int     `json:"unique_points"`
	Simulations  int64   `json:"simulations"`
	DedupRate    float64 `json:"serve_dedup_rate"`
	WarmQueryMS  float64 `json:"serve_warm_query_ms"`
	ElapsedMS    float64 `json:"elapsed_ms"`
}

// chaosRecord captures the chaos phase: retrying clients against a daemon
// injecting seeded faults behind a tiny admission cap. Completed grids were
// verified bit-identical across clients before this record was written.
type chaosRecord struct {
	FaultSpec   string  `json:"fault_spec"`
	Clients     int     `json:"clients"`
	Succeeded   int     `json:"succeeded"`
	SuccessRate float64 `json:"chaos_success_rate"`
	ShedSweeps  int64   `json:"shed_sweeps"`
	ShedRate    float64 `json:"shed_rate"`
	Faults      int64   `json:"faults_injected"`
	Verified    int     `json:"verified_clients"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

// serveDedup is the gateable serve ratio, 0 when the baseline predates the
// service layer.
func (r *record) serveDedup() float64 {
	if r.Serve == nil {
		return 0
	}
	return r.Serve.DedupRate
}

// compressionRatio is the gateable trace-column ratio, 0 when the baseline
// predates compressed columns.
func (r *record) compressionRatio() float64 {
	if r.TraceColumns == nil {
		return 0
	}
	return r.TraceColumns.CompressionRatio
}

// scaleProcs resolves the matrix widths: the -scale-procs list, or the
// default {1, 2, 4, NumCPU}, deduplicated, sorted and clamped to the
// machine. An explicit list whose every entry exceeds the machine yields an
// empty matrix (the caller notes the skip).
func scaleProcs(list string) ([]int, error) {
	cpus := runtime.NumCPU()
	var raw []int
	if strings.TrimSpace(list) != "" {
		for _, f := range strings.Split(list, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				return nil, fmt.Errorf("bad -scale-procs entry %q", f)
			}
			raw = append(raw, v)
		}
	} else {
		raw = []int{1, 2, 4, cpus}
	}
	seen := map[int]bool{}
	var procs []int
	for _, v := range raw {
		if seen[v] {
			continue
		}
		seen[v] = true
		if v > cpus {
			fmt.Fprintf(os.Stderr, "benchrec: dropping scaling point %d procs (machine has %d)\n", v, cpus)
			continue
		}
		procs = append(procs, v)
	}
	sort.Ints(procs)
	return procs, nil
}

// measureTraceColumns sizes every paper workload's capture in both spill
// formats against the decoded in-memory events they replay as. The captures
// are already warm in tc, so this is pure re-serialization.
func measureTraceColumns(ctx context.Context, tc *suite.TraceCache) (*traceColumnsRecord, error) {
	var events int
	var v1b, v2b, decoded int64
	for _, w := range workloads.All() {
		c, err := tc.Capture(ctx, w, 0)
		if err != nil {
			return nil, err
		}
		n1, err := c.Buf.WriteToV1(io.Discard)
		if err != nil {
			return nil, err
		}
		n2, err := c.Buf.WriteTo(io.Discard)
		if err != nil {
			return nil, err
		}
		nf, nd := c.Buf.NumFetches(), c.Buf.NumDatas()
		events += nf + nd
		v1b += n1
		v2b += n2
		decoded += int64(nf)*int64(unsafe.Sizeof(trace.FetchEvent{})) +
			int64(nd)*int64(unsafe.Sizeof(trace.DataEvent{}))
	}
	if events == 0 || v2b == 0 {
		return nil, fmt.Errorf("trace columns: empty captures")
	}
	return &traceColumnsRecord{
		Events:               events,
		V1BytesPerEvent:      float64(v1b) / float64(events),
		V2BytesPerEvent:      float64(v2b) / float64(events),
		DecodedBytesPerEvent: float64(decoded) / float64(events),
		CompressionRatio:     float64(v1b) / float64(v2b),
	}, nil
}

func timeIt(name string, f func() error) float64 {
	fmt.Fprintf(os.Stderr, "benchrec: %s...", name)
	t0 := time.Now()
	if err := f(); err != nil {
		fmt.Fprintf(os.Stderr, "\nbenchrec: %s: %v\n", name, err)
		os.Exit(1)
	}
	d := time.Since(t0)
	fmt.Fprintf(os.Stderr, " %.0fms\n", d.Seconds()*1000)
	return d.Seconds() * 1000
}

// replayRate is the suite's execute-once / replay-many win: live suite
// time over warm per-sink replay time.
func (r *record) replayRate() float64 { return r.SuiteLive / r.SuiteRepl }

// batchedReplayRate is the batched fan-out engine's win: live suite time
// over warm batched replay time (0 for baselines that predate batching,
// which the compare gate skips).
func (r *record) batchedReplayRate() float64 {
	if r.SuiteReplBatched == 0 {
		return 0
	}
	return r.SuiteLive / r.SuiteReplBatched
}

// parseTolerance accepts "20%" or "0.2".
func parseTolerance(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad tolerance %q", s)
	}
	if pct {
		v /= 100
	}
	if v < 0 || v >= 1 {
		return 0, fmt.Errorf("tolerance %q outside [0%%, 100%%)", s)
	}
	return v, nil
}

// compareBaseline gates the current ratio metrics against a baseline file.
// It returns an error listing every regressed metric.
func compareBaseline(cur *record, baselinePath string, tol float64) error {
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base record
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	var regressions []string
	check := func(name string, got, want float64) {
		// Skip metrics absent from an older baseline schema; the negated
		// form also catches the NaN a missing-field 0/0 ratio produces.
		if !(want > 0) {
			return
		}
		floor := want * (1 - tol)
		ok := "ok"
		if got < floor {
			ok = "REGRESSED"
			regressions = append(regressions,
				fmt.Sprintf("%s %.2fx below floor %.2fx (baseline %.2fx - %.0f%%)", name, got, floor, want, tol*100))
		}
		fmt.Fprintf(os.Stderr, "benchrec: compare %-22s %6.2fx vs baseline %6.2fx (floor %.2fx) %s\n",
			name, got, want, floor, ok)
	}
	check("suite-replay-rate", cur.replayRate(), base.replayRate())
	check("suite-replay-batched-rate", cur.batchedReplayRate(), base.batchedReplayRate())
	check("explore-speedup", cur.Explore.Speedup, base.Explore.Speedup)
	check("serve-dedup-rate", cur.serveDedup(), base.serveDedup())
	check("trace-compression-ratio", cur.compressionRatio(), base.compressionRatio())
	// The compression ratio also clears an absolute floor: the columns must
	// at least halve the paper workloads' spill bytes, whatever any baseline
	// says.
	if cr := cur.compressionRatio(); cr > 0 && cr < 2.0 {
		regressions = append(regressions,
			fmt.Sprintf("trace-compression-ratio %.2fx below the absolute 2.00x floor", cr))
	}
	// Skipped (both sides 0) when either run is single-core: a 1-proc
	// matrix has no multi-core rate to form the ratio from.
	check("scaling-replay-ratio", cur.ScalingRatio, base.ScalingRatio)
	if regressions != nil {
		return fmt.Errorf("ratio regressions vs %s: %s", baselinePath, strings.Join(regressions, "; "))
	}
	return nil
}

func main() {
	out := flag.String("o", "BENCH_8.json", "output file")
	par := flag.Int("j", 0, "parallelism passed to the runners (0 = GOMAXPROCS)")
	compare := flag.String("compare", "", "baseline BENCH_<n>.json `file`; exit nonzero if a ratio metric regresses beyond -tolerance")
	tolerance := flag.String("tolerance", "20%", "allowed ratio-metric regression for -compare (\"20%\" or \"0.2\")")
	scaleList := flag.String("scale-procs", "", "comma-separated GOMAXPROCS `widths` for the scaling matrix (default 1,2,4,NumCPU, clamped to the machine)")
	minScaling := flag.Float64("min-scaling", 0, "absolute floor for scaling_replay_ratio; exit nonzero below it (requires a multi-core matrix)")
	flag.Parse()
	tol, err := parseTolerance(*tolerance)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(2)
	}
	procs, err := scaleProcs(*scaleList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(2)
	}
	ctx := context.Background()

	var r record
	r.Date = time.Now().UTC().Format(time.RFC3339)
	r.GoVersion = runtime.Version()
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)
	r.Parallel = *par

	// Warm the per-process assembly/predecode memos first so every mode
	// below pays identical build costs and the timings isolate simulation.
	for _, w := range workloads.All() {
		if _, err := w.Build(); err != nil {
			fmt.Fprintln(os.Stderr, "benchrec:", err)
			os.Exit(1)
		}
	}

	r.SuiteLive = timeIt("suite live", func() error {
		_, err := suite.Run(ctx, suite.WithParallelism(*par))
		return err
	})
	tc := suite.NewTraceCache()
	if _, err := suite.Run(ctx, suite.WithParallelism(*par), suite.WithTraceCache(tc)); err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	r.SuiteRepl = timeIt("suite replay per-sink (warm)", func() error {
		_, err := suite.Run(ctx, suite.WithParallelism(*par), suite.WithTraceCache(tc),
			suite.WithBatchReplay(false))
		return err
	})
	before := tc.Stats()
	r.SuiteReplBatched = timeIt("suite replay batched (warm)", func() error {
		_, err := suite.Run(ctx, suite.WithParallelism(*par), suite.WithTraceCache(tc))
		return err
	})
	// Fan-out shape and delivery throughput of the batched pass alone.
	after := tc.Stats()
	if passes := after.FanOutPasses - before.FanOutPasses; passes > 0 {
		r.SinksPerPass = float64(after.FanOutSinks-before.FanOutSinks) / float64(passes)
		r.EventsPerSec = float64(after.FanOutDeliveries-before.FanOutDeliveries) /
			(r.SuiteReplBatched / 1000)
	}

	// The same sweep bench_test.go times, so `go test -bench` and the
	// committed numbers agree on what they measure.
	s := explore.EngineBenchSpace()
	r.Explore.Geometries = len(s.Geometries())
	r.Explore.Workloads = len(s.Workloads)
	r.Explore.Points = s.NumPoints()
	r.Explore.LiveMS = timeIt("explore sweep live", func() error {
		_, err := explore.Run(ctx, s, explore.WithParallelism(*par),
			explore.WithTraceSharing(false))
		return err
	})
	r.Explore.SharedMS = timeIt("explore sweep shared", func() error {
		_, err := explore.Run(ctx, s, explore.WithParallelism(*par))
		return err
	})
	r.Explore.Speedup = r.Explore.LiveMS / r.Explore.SharedMS

	// Trace columns: both spill encodings of the already-warm captures.
	r.TraceColumns, err = measureTraceColumns(ctx, tc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchrec: trace columns: %.1f B/event v1, %.1f B/event v2 (%.2fx), %.0f B/event decoded\n",
		r.TraceColumns.V1BytesPerEvent, r.TraceColumns.V2BytesPerEvent,
		r.TraceColumns.CompressionRatio, r.TraceColumns.DecodedBytesPerEvent)

	// Scaling matrix: the warm batched replay and a cold shared sweep with
	// the scheduler pinned at each width. GOMAXPROCS is restored afterwards
	// so the serve phase below runs at the machine default.
	prevProcs := runtime.GOMAXPROCS(0)
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		pt := scalePoint{Procs: p}
		before := tc.Stats()
		pt.ReplayBatchedMS = timeIt(fmt.Sprintf("suite replay batched (warm, %d procs)", p), func() error {
			_, err := suite.Run(ctx, suite.WithParallelism(p), suite.WithTraceCache(tc))
			return err
		})
		after := tc.Stats()
		pt.EventsPerSec = float64(after.FanOutDeliveries-before.FanOutDeliveries) /
			(pt.ReplayBatchedMS / 1000)
		pt.ExploreSharedMS = timeIt(fmt.Sprintf("explore sweep shared (%d procs)", p), func() error {
			_, err := explore.Run(ctx, s, explore.WithParallelism(p))
			return err
		})
		r.Scaling = append(r.Scaling, pt)
	}
	runtime.GOMAXPROCS(prevProcs)
	var oneCoreEPS float64
	for _, pt := range r.Scaling {
		if pt.Procs == 1 {
			oneCoreEPS = pt.EventsPerSec
		}
	}
	if oneCoreEPS > 0 {
		for i := range r.Scaling {
			r.Scaling[i].SpeedupPerCore = (r.Scaling[i].EventsPerSec / oneCoreEPS) /
				float64(r.Scaling[i].Procs)
			if r.Scaling[i].Procs >= 2 {
				if ratio := r.Scaling[i].EventsPerSec / oneCoreEPS; ratio > r.ScalingRatio {
					r.ScalingRatio = ratio
				}
			}
		}
	}
	if r.ScalingRatio == 0 {
		r.SingleCore = true
		fmt.Fprintln(os.Stderr, "benchrec: ======================================================================")
		fmt.Fprintln(os.Stderr, "benchrec: NOTE: no multi-core scaling point ran (single-core machine or matrix")
		fmt.Fprintln(os.Stderr, "benchrec: skipped) — recording single_core: true and omitting")
		fmt.Fprintln(os.Stderr, "benchrec: scaling_replay_ratio; gate scaling with -min-scaling on a wider box.")
		fmt.Fprintln(os.Stderr, "benchrec: ======================================================================")
	}

	// The service layer under the standard load harness: an in-process
	// daemon, 64 overlapping clients cycling two variants that share a grid
	// point. The dedup rate is fully determined by the variant overlap on a
	// cold store (1 - unique/requested), which is what makes it gateable.
	storeDir, err := os.MkdirTemp("", "benchrec-serve-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(storeDir)
	srv, err := serve.New(serve.Config{StoreDir: storeDir, Parallelism: *par})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	ts := httptest.NewServer(srv)
	variants := []serve.SweepRequest{
		{Sets: []int{64, 128}, TagEntries: []int{1}, SetEntries: []int{4},
			Workloads: []string{"synth:hotloop,fp=1KiB,n=8192"}},
		{Sets: []int{64, 256}, TagEntries: []int{1}, SetEntries: []int{4},
			Workloads: []string{"synth:hotloop,fp=1KiB,n=8192"}},
	}
	var rep *load.Report
	timeIt("serve load (64 clients)", func() error {
		var err error
		rep, err = load.Run(ctx, client.New(ts.URL), load.Options{Clients: 64, Variants: variants})
		return err
	})
	ts.Close()
	srv.Close()
	r.Serve = &serveRecord{
		Clients:      rep.Clients,
		Points:       rep.Points,
		UniquePoints: rep.UniquePoints,
		Simulations:  rep.Simulations,
		DedupRate:    rep.DedupRate,
		WarmQueryMS:  rep.WarmQueryMS,
		ElapsedMS:    rep.ElapsedMS,
	}

	// Chaos: the same variants against a fresh daemon injecting seeded
	// faults (I/O errors, short reads, latency spikes, connection drops)
	// behind a deliberately tiny admission cap, driven by retrying
	// clients. Verify makes the hard invariant inline — any two clients
	// holding different grids for the same variant fails this run — while
	// the recorded rates stay informational: a different seed or machine
	// legitimately shifts them.
	const chaosSpec = "seed=7;io:err:0.05;io:shortread:0.03;io:latency:0.05:2ms;http:drop:0.01"
	inj, err := fault.NewFromString(chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	chaosDir, err := os.MkdirTemp("", "benchrec-chaos-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(chaosDir)
	csrv, err := serve.New(serve.Config{
		StoreDir: chaosDir, Parallelism: *par, MaxBacklog: 8, Faults: inj,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	cts := httptest.NewServer(csrv)
	var crep *load.Report
	timeIt("serve chaos (32 clients, faults on)", func() error {
		var err error
		crep, err = load.Run(ctx, client.New(cts.URL, client.WithRetry(client.DefaultRetryPolicy(8))),
			load.Options{Clients: 32, Variants: variants, SkipWarm: true,
				AllowFailures: true, Verify: true})
		return err
	})
	cts.Close()
	csrv.Close()
	r.Chaos = &chaosRecord{
		FaultSpec:   chaosSpec,
		Clients:     crep.Clients,
		Succeeded:   crep.Succeeded,
		SuccessRate: crep.SuccessRate,
		ShedSweeps:  crep.ShedSweeps,
		ShedRate:    crep.ShedRate,
		Faults:      crep.FaultsInjected,
		Verified:    crep.VerifiedClients,
		ElapsedMS:   crep.ElapsedMS,
	}
	fmt.Fprintf(os.Stderr, "benchrec: chaos: %.0f%% success, %.0f%% shed, %d faults injected, %d grids verified\n",
		100*crep.SuccessRate, 100*crep.ShedRate, crep.FaultsInjected, crep.VerifiedClients)

	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchrec: wrote %s (explore speedup %.2fx)\n", *out, r.Explore.Speedup)
	if *minScaling > 0 {
		if r.ScalingRatio == 0 {
			fmt.Fprintf(os.Stderr, "benchrec: -min-scaling %.2f set but no multi-core scaling point ran\n", *minScaling)
			os.Exit(1)
		}
		if r.ScalingRatio < *minScaling {
			fmt.Fprintf(os.Stderr, "benchrec: scaling_replay_ratio %.2fx below -min-scaling floor %.2fx\n",
				r.ScalingRatio, *minScaling)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchrec: scaling_replay_ratio %.2fx clears -min-scaling floor %.2fx\n",
			r.ScalingRatio, *minScaling)
	}
	if *compare != "" {
		if err := compareBaseline(&r, *compare, tol); err != nil {
			fmt.Fprintln(os.Stderr, "benchrec:", err)
			os.Exit(1)
		}
	}
}
