// benchrec records the repository's headline wall-clock timings into a
// BENCH_<n>.json file, starting the performance trajectory the roadmap asks
// for: each perf-focused PR runs it once and commits the result, so
// regressions and wins are visible across the PR sequence.
//
// It measures, on the current machine:
//
//   - suite_live_ms: one full seven-benchmark suite pass, every technique
//     attached, live execution (the cost of regenerating Figures 4-8);
//   - suite_replay_ms: the same pass replayed from a warm trace cache;
//   - explore_live_ms / explore_shared_ms: a cold multi-geometry
//     design-space sweep (24 geometries × 2 workloads) with the
//     execute-once / replay-many engine off and on;
//   - explore_speedup: live / shared, the engine's headline win.
//
// Usage:
//
//	go run ./tools/benchrec [-o BENCH_3.json] [-j N]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"waymemo/internal/explore"
	"waymemo/internal/suite"
	"waymemo/internal/workloads"
)

// record is the BENCH_<n>.json schema.
type record struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Parallel   int     `json:"parallelism"`
	SuiteLive  float64 `json:"suite_live_ms"`
	SuiteRepl  float64 `json:"suite_replay_ms"`
	Explore    struct {
		Geometries int     `json:"geometries"`
		Workloads  int     `json:"workloads"`
		Points     int     `json:"points"`
		LiveMS     float64 `json:"explore_live_ms"`
		SharedMS   float64 `json:"explore_shared_ms"`
		Speedup    float64 `json:"explore_speedup"`
	} `json:"explore_sweep_cold"`
}

func timeIt(name string, f func() error) float64 {
	fmt.Fprintf(os.Stderr, "benchrec: %s...", name)
	t0 := time.Now()
	if err := f(); err != nil {
		fmt.Fprintf(os.Stderr, "\nbenchrec: %s: %v\n", name, err)
		os.Exit(1)
	}
	d := time.Since(t0)
	fmt.Fprintf(os.Stderr, " %.0fms\n", d.Seconds()*1000)
	return d.Seconds() * 1000
}

func main() {
	out := flag.String("o", "BENCH_3.json", "output file")
	par := flag.Int("j", 0, "parallelism passed to the runners (0 = GOMAXPROCS)")
	flag.Parse()
	ctx := context.Background()

	var r record
	r.Date = time.Now().UTC().Format(time.RFC3339)
	r.GoVersion = runtime.Version()
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)
	r.Parallel = *par

	// Warm the per-process assembly/predecode memos first so every mode
	// below pays identical build costs and the timings isolate simulation.
	for _, w := range workloads.All() {
		if _, err := w.Build(); err != nil {
			fmt.Fprintln(os.Stderr, "benchrec:", err)
			os.Exit(1)
		}
	}

	r.SuiteLive = timeIt("suite live", func() error {
		_, err := suite.Run(ctx, suite.WithParallelism(*par))
		return err
	})
	tc := suite.NewTraceCache()
	if _, err := suite.Run(ctx, suite.WithParallelism(*par), suite.WithTraceCache(tc)); err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	r.SuiteRepl = timeIt("suite replay (warm)", func() error {
		_, err := suite.Run(ctx, suite.WithParallelism(*par), suite.WithTraceCache(tc))
		return err
	})

	// The same sweep bench_test.go times, so `go test -bench` and the
	// committed numbers agree on what they measure.
	s := explore.EngineBenchSpace()
	r.Explore.Geometries = len(s.Geometries())
	r.Explore.Workloads = len(s.Workloads)
	r.Explore.Points = s.NumPoints()
	r.Explore.LiveMS = timeIt("explore sweep live", func() error {
		_, err := explore.Run(ctx, s, explore.WithParallelism(*par),
			explore.WithTraceSharing(false))
		return err
	})
	r.Explore.SharedMS = timeIt("explore sweep shared", func() error {
		_, err := explore.Run(ctx, s, explore.WithParallelism(*par))
		return err
	})
	r.Explore.Speedup = r.Explore.LiveMS / r.Explore.SharedMS

	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchrec: wrote %s (explore speedup %.2fx)\n", *out, r.Explore.Speedup)
}
