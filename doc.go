// Package waymemo reproduces "A Way Memoization Technique for Reducing
// Power Consumption of Caches in Application Specific Integrated
// Processors" (Ishihara & Fallah, DATE 2005).
//
// The library lives under internal/: the Memory Address Buffer and the
// way-memoized cache controllers in internal/core, the FRVL processor
// substrate (ISA, assembler, simulator) in internal/isa, internal/asm and
// internal/sim, the cache and power models in internal/cache,
// internal/cacti, internal/synth and internal/power, the paper's seven
// benchmarks and the parameterized synthetic workload family ("synth:"
// specs) in internal/workloads, the technique registry and parallel
// suite runner in internal/suite, and the table/figure rendering in
// internal/experiments.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results. The benchmarks in
// bench_test.go regenerate every table and figure:
//
//	go test -bench=. -benchmem
package waymemo
