package waymemo_test

// One benchmark per table and figure of the paper, plus micro-benchmarks of
// the substrate. The figure benchmarks share a single run of the
// seven-benchmark suite and report the headline metric of each figure via
// b.ReportMetric, so `go test -bench=.` both times the regeneration and
// prints the reproduced numbers.

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"

	"waymemo/internal/cache"
	"waymemo/internal/core"
	"waymemo/internal/experiments"
	"waymemo/internal/explore"
	"waymemo/internal/sim"
	"waymemo/internal/suite"
	"waymemo/internal/synth"
	"waymemo/internal/trace"
	"waymemo/internal/workloads"
)

var (
	suiteOnce    sync.Once
	suiteResults *suite.Results
	suiteErr     error
)

func getSuite(b *testing.B) *suite.Results {
	b.Helper()
	suiteOnce.Do(func() { suiteResults, suiteErr = suite.Run(context.Background()) })
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteResults
}

// BenchmarkTable1 regenerates the MAB area grid (Table 1).
func BenchmarkTable1(b *testing.B) {
	var area float64
	for i := 0; i < b.N; i++ {
		for _, row := range synth.Grid() {
			for _, r := range row {
				area = r.AreaMM2
			}
		}
	}
	b.ReportMetric(synth.Characterize(2, 8).AreaMM2, "mm2_2x8")
	_ = area
}

// BenchmarkTable2 regenerates the MAB delay grid (Table 2).
func BenchmarkTable2(b *testing.B) {
	var d float64
	for i := 0; i < b.N; i++ {
		for _, row := range synth.Grid() {
			for _, r := range row {
				d = r.DelayNS
			}
		}
	}
	b.ReportMetric(synth.Characterize(2, 16).DelayNS, "ns_2x16")
	_ = d
}

// BenchmarkTable3 regenerates the MAB power grid (Table 3).
func BenchmarkTable3(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		for _, row := range synth.Grid() {
			for _, r := range row {
				p = r.ActiveMW
			}
		}
	}
	b.ReportMetric(synth.Characterize(2, 8).ActiveMW, "mW_active_2x8")
	b.ReportMetric(synth.Characterize(2, 8).SleepMW, "mW_sleep_2x8")
	_ = p
}

// BenchmarkFigure4 regenerates the D-cache tag/way access comparison.
// Metric: average fraction of tag reads eliminated by the 2x8 MAB.
func BenchmarkFigure4(b *testing.B) {
	r := getSuite(b)
	var rows []experiments.AccessRow
	for i := 0; i < b.N; i++ {
		rows = Figure4Rows(r)
	}
	var red float64
	n := 0
	for _, row := range rows {
		if row.Tech == experiments.DMAB {
			red += 1 - row.Tags/2.0
			n++
		}
	}
	b.ReportMetric(red/float64(n), "tag_reduction_avg")
}

// Figure4Rows is split out so the compiler cannot fold the benchmark away.
func Figure4Rows(r *suite.Results) []experiments.AccessRow {
	return experiments.Figure4(r)
}

// BenchmarkFigure5 regenerates the D-cache power decomposition.
// Metric: average D-cache power saving of the 2x8 MAB vs the original.
func BenchmarkFigure5(b *testing.B) {
	r := getSuite(b)
	var rows []experiments.PowerRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure5(r)
	}
	total := map[suite.ID]float64{}
	for _, row := range rows {
		total[row.Tech] += row.B.TotalMW()
	}
	b.ReportMetric(1-total[experiments.DMAB]/total[experiments.DOrig], "d_saving_avg")
}

// BenchmarkFigure6 regenerates the I-cache tag/way access comparison.
// Metric: average tag reads per access under approach [4] (the paper's
// baseline bar) and under the 2x16 MAB.
func BenchmarkFigure6(b *testing.B) {
	r := getSuite(b)
	var rows []experiments.AccessRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure6(r)
	}
	sum := map[suite.ID]float64{}
	cnt := map[suite.ID]int{}
	for _, row := range rows {
		sum[row.Tech] += row.Tags
		cnt[row.Tech]++
	}
	b.ReportMetric(sum[experiments.IA4]/float64(cnt[experiments.IA4]), "tags_access_a4")
	b.ReportMetric(sum[experiments.IMAB16]/float64(cnt[experiments.IMAB16]), "tags_access_2x16")
}

// BenchmarkFigure7 regenerates the I-cache power comparison.
// Metric: average I-cache power saving of the 2x16 MAB vs approach [4].
func BenchmarkFigure7(b *testing.B) {
	r := getSuite(b)
	var rows []experiments.PowerRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure7(r)
	}
	total := map[suite.ID]float64{}
	for _, row := range rows {
		total[row.Tech] += row.B.TotalMW()
	}
	b.ReportMetric(1-total[experiments.IMAB16]/total[experiments.IA4], "i_saving_avg")
}

// BenchmarkFigure8 regenerates the headline total-power figure.
// Metrics: average and maximum total cache power saving (paper: 0.30/0.40).
func BenchmarkFigure8(b *testing.B) {
	r := getSuite(b)
	var rows []experiments.TotalRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure8(r)
	}
	avg, max := experiments.AverageSaving(rows)
	b.ReportMetric(avg, "saving_avg")
	b.ReportMetric(max, "saving_max")
}

// BenchmarkSuite times one full pass of the seven benchmarks with every
// technique attached — the cost of regenerating Figures 4-8 from scratch —
// at the default parallelism.
func BenchmarkSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := suite.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteSequential is BenchmarkSuite pinned to one worker — the
// pre-parallelism baseline; the ratio to BenchmarkSuite is the speedup the
// worker pool buys.
func BenchmarkSuiteSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := suite.Run(context.Background(), suite.WithParallelism(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteReplay times the seven-benchmark suite on a warm trace
// cache with the batched fan-out engine (the default): every benchmark is
// one pass over its captured stream feeding all eight techniques. The ratio
// to BenchmarkSuite is the per-pass cost the execute-once / replay-many
// engine removes from repeated runs (ablations, report mode, sweeps).
func BenchmarkSuiteReplay(b *testing.B) {
	tc := suite.NewTraceCache()
	if _, err := suite.Run(context.Background(), suite.WithTraceCache(tc)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := suite.Run(context.Background(), suite.WithTraceCache(tc)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteReplayPerSink is BenchmarkSuiteReplay on the legacy path —
// one per-event pass per technique sink (wmx -replay-batch=false). The
// ratio to BenchmarkSuiteReplay is the batched fan-out's win.
func BenchmarkSuiteReplayPerSink(b *testing.B) {
	tc := suite.NewTraceCache()
	if _, err := suite.Run(context.Background(), suite.WithTraceCache(tc)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := suite.Run(context.Background(), suite.WithTraceCache(tc),
			suite.WithBatchReplay(false)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreSweepShared times a cold multi-geometry sweep
// (explore.EngineBenchSpace: 24 geometries × 2 workloads = 48 grid points)
// on the execute-once / replay-many engine (the default): each workload
// executes once, every geometry replays the capture.
func BenchmarkExploreSweepShared(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := explore.Run(context.Background(), explore.EngineBenchSpace()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreSweepLive is the same sweep with trace sharing disabled —
// one full simulator execution per grid point, the pre-engine behavior. The
// ratio to BenchmarkExploreSweepShared is the engine's speedup.
func BenchmarkExploreSweepLive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := explore.Run(context.Background(), explore.EngineBenchSpace(),
			explore.WithTraceSharing(false)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceReplayRate measures raw replay speed (events/sec) of the
// packed buffer into a null sink — the ceiling on how fast a replayed grid
// point can go.
func BenchmarkTraceReplayRate(b *testing.B) {
	var buf trace.Buffer
	if _, err := workloads.Run(workloads.DCT(), &buf, &buf); err != nil {
		b.Fatal(err)
	}
	sinkF := trace.FetchFunc(func(trace.FetchEvent) {})
	sinkD := trace.DataFunc(func(trace.DataEvent) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := buf.Replay(context.Background(), sinkF, sinkD); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkTraceFanOutRate measures raw fan-out speed of one batched pass
// into eight null sinks — the ceiling of the fan-out engine itself, with
// the decode amortized across the whole sink group. The reported events/s
// counts per-sink deliveries, comparable to eight BenchmarkTraceReplayRate
// passes back to back.
func BenchmarkTraceFanOutRate(b *testing.B) {
	var buf trace.Buffer
	if _, err := workloads.Run(workloads.DCT(), &buf, &buf); err != nil {
		b.Fatal(err)
	}
	const sinks = 8
	pairs := make([]trace.SinkPair, sinks)
	for i := range pairs {
		pairs[i] = trace.SinkPair{
			Fetch: trace.FetchFunc(func(trace.FetchEvent) {}),
			Data:  trace.DataFunc(func(trace.DataEvent) {}),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := buf.ReplayAll(context.Background(), pairs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()*sinks*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkTraceColumnCodec measures the WMTRACE2 column codec end to end:
// serializing a real capture's sealed delta/varint chunks and parsing them
// back into an adopted buffer. Reported metrics: spill bytes per event
// (the compression the format buys on the paper's access mix) and encode
// throughput.
func BenchmarkTraceColumnCodec(b *testing.B) {
	var buf trace.Buffer
	if _, err := workloads.Run(workloads.DCT(), &buf, &buf); err != nil {
		b.Fatal(err)
	}
	var spill bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spill.Reset()
		if _, err := buf.WriteTo(&spill); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.ReadBuffer(bytes.NewReader(spill.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(spill.Len())/float64(buf.Len()), "spill_B/event")
	b.ReportMetric(float64(buf.Len()*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSimulatorIPS measures raw simulator speed (instructions/sec) on
// the DCT benchmark without any cache models attached.
func BenchmarkSimulatorIPS(b *testing.B) {
	w := workloads.DCT()
	p, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		c := sim.New()
		c.LoadProgram(p, workloads.StackTop)
		if err := c.Run(workloads.DefaultMaxInstrs); err != nil {
			b.Fatal(err)
		}
		instrs += c.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkMABProbe measures the cost of one MAB probe+update pair.
func BenchmarkMABProbe(b *testing.B) {
	m := core.New(core.DefaultD, cache.FRV32K)
	r := rand.New(rand.NewSource(5))
	bases := make([]uint32, 64)
	for i := range bases {
		bases[i] = uint32(r.Intn(1 << 28))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := bases[i&63]
		if res := m.Probe(base, 8); !res.Hit {
			m.Update(base, 8, 0)
		}
	}
}

// BenchmarkDController measures one way-memoized D-cache access end to end.
func BenchmarkDController(b *testing.B) {
	d := core.NewDController(cache.FRV32K, core.DefaultD)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := uint32(0x100000 + (i&1023)*4)
		d.OnData(trace.DataEvent{Addr: base + 8, Base: base, Disp: 8, Size: 4})
	}
}

// BenchmarkAssembler measures assembling the largest benchmark program
// (runtime prologue plus the mpeg2 encoder and its embedded frames).
func BenchmarkAssembler(b *testing.B) {
	w := workloads.MPEG2Enc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Build(); err != nil {
			b.Fatal(err)
		}
	}
}
